type t = { db : Database.t; txns : Txn.t array }

let make db txns =
  if txns = [] then invalid_arg "System.make: no transactions";
  let names = List.map Txn.name txns in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "System.make: duplicate transaction names";
  { db; txns = Array.of_list txns }

let db t = t.db

let txns t = Array.copy t.txns

let num_txns t = Array.length t.txns

let txn t i = t.txns.(i)

let total_steps t =
  Array.fold_left (fun acc txn -> acc + Txn.num_steps txn) 0 t.txns

let pair t =
  if Array.length t.txns <> 2 then
    invalid_arg "System.pair: not a two-transaction system";
  (t.txns.(0), t.txns.(1))

let common_locked t i j =
  let a = Txn.locked_entities t.txns.(i) in
  let b = Txn.locked_entities t.txns.(j) in
  List.filter (fun e -> List.mem e b) a

let validate ?strict t =
  Array.fold_left
    (fun acc txn ->
      acc @ List.map (fun v -> (txn, v)) (Validate.check ?strict t.db txn))
    [] t.txns

let validate_exn ?strict t =
  Array.iter (Validate.check_exn ?strict t.db) t.txns

let sites_used t =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun txn ->
      List.iter
        (fun e ->
          let s = Database.site t.db e in
          if not (Hashtbl.mem seen s) then Hashtbl.add seen s ())
        (Txn.touched_entities txn))
    t.txns;
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) seen [])

let fingerprint t =
  let buf = Buffer.create 512 in
  let add = Buffer.add_string buf in
  (* Names are length-prefixed so no choice of entity or transaction
     names can make two different systems serialize identically. *)
  let add_name s =
    add (string_of_int (String.length s));
    add ":";
    add s
  in
  List.iter
    (fun e ->
      add_name (Database.name t.db e);
      add "@";
      add (string_of_int (Database.site t.db e));
      add ";")
    (Database.entities t.db);
  Array.iter
    (fun txn ->
      add "|";
      add_name (Txn.name txn);
      add ":";
      Array.iter
        (fun (s : Step.t) ->
          add
            (match s.Step.action with
            | Step.Lock -> "L"
            | Step.Unlock -> "U"
            | Step.Update -> "u");
          add (string_of_int s.Step.entity);
          add ",")
        (Txn.steps txn);
      add "#";
      List.iter
        (fun (a, b) ->
          add (string_of_int a);
          add "<";
          add (string_of_int b);
          add ";")
        (List.sort compare (Distlock_order.Poset.relation (Txn.order txn))))
    t.txns;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@]" Database.pp t.db
    (Format.pp_print_list (Txn.pp t.db))
    (Array.to_list t.txns)
