type t = { db : Database.t; txns : Txn.t array }

let make db txns =
  if txns = [] then invalid_arg "System.make: no transactions";
  let names = List.map Txn.name txns in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "System.make: duplicate transaction names";
  { db; txns = Array.of_list txns }

let db t = t.db

let txns t = Array.copy t.txns

let num_txns t = Array.length t.txns

let txn t i = t.txns.(i)

let total_steps t =
  Array.fold_left (fun acc txn -> acc + Txn.num_steps txn) 0 t.txns

let pair t =
  if Array.length t.txns <> 2 then
    invalid_arg "System.pair: not a two-transaction system";
  (t.txns.(0), t.txns.(1))

let common_locked t i j =
  let a = Txn.locked_entities t.txns.(i) in
  let b = Txn.locked_entities t.txns.(j) in
  List.filter (fun e -> List.mem e b) a

let validate ?strict t =
  Array.fold_left
    (fun acc txn ->
      acc @ List.map (fun v -> (txn, v)) (Validate.check ?strict t.db txn))
    [] t.txns

let validate_exn ?strict t =
  Array.iter (Validate.check_exn ?strict t.db) t.txns

let sites_used t =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun txn ->
      List.iter
        (fun e ->
          let s = Database.site t.db e in
          if not (Hashtbl.mem seen s) then Hashtbl.add seen s ())
        (Txn.touched_entities txn))
    t.txns;
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) seen [])

(* Entity names are length-prefixed so no choice of names can make two
   different databases serialize identically. *)
let add_entities buf db es =
  List.iter
    (fun e ->
      let n = Database.name db e in
      Buffer.add_string buf (string_of_int (String.length n));
      Buffer.add_string buf ":";
      Buffer.add_string buf n;
      Buffer.add_string buf "@";
      Buffer.add_string buf (string_of_int (Database.site db e));
      Buffer.add_string buf ";")
    es

(* System and pair fingerprints are digests over per-transaction digests
   ({!Txn.fingerprint}) plus the relevant slice of the stored-at
   function, so all three levels agree on what a transaction's identity
   is and the pair digest is invariant under any change to transactions
   outside the pair. *)
let fingerprint t =
  let buf = Buffer.create 512 in
  add_entities buf t.db (Database.entities t.db);
  Array.iter
    (fun txn ->
      Buffer.add_string buf "|";
      Buffer.add_string buf (Txn.fingerprint txn))
    t.txns;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pair_fingerprint_with ~fp t i j =
  if i = j then invalid_arg "System.pair_fingerprint: equal indices";
  let a = fp i and b = fp j in
  let lo, hi = if a <= b then (a, b) else (b, a) in
  let touched =
    List.sort_uniq compare
      (Txn.touched_entities t.txns.(i) @ Txn.touched_entities t.txns.(j))
  in
  let buf = Buffer.create 160 in
  add_entities buf t.db touched;
  Buffer.add_string buf "|";
  Buffer.add_string buf lo;
  Buffer.add_string buf "|";
  Buffer.add_string buf hi;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pair_fingerprint t =
  pair_fingerprint_with ~fp:(fun i -> Txn.fingerprint t.txns.(i)) t

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@]" Database.pp t.db
    (Format.pp_print_list (Txn.pp t.db))
    (Array.to_list t.txns)
