(** Transaction steps.

    A step either updates an entity or carries the special lock/unlock
    semantics (Section 2). Under the paper's interpretation every update
    reads and rewrites its entity, so update steps on a common entity always
    conflict. *)

type action = Lock | Unlock | Update

type t = { action : action; entity : Database.entity }

val lock : Database.entity -> t

val unlock : Database.entity -> t

val update : Database.entity -> t

val is_lock : t -> bool

val is_unlock : t -> bool

val is_update : t -> bool

val equal : t -> t -> bool

val to_string : Database.t -> t -> string
(** Paper notation: [Lx], [Ux], or bare [x] for an update. *)

val pp : Database.t -> Format.formatter -> t -> unit
